// Command bench2json converts `go test -bench` output on stdin into a JSON
// array on stdout, so benchmark runs can be archived and diffed as data
// (see the bench-json Makefile target, which snapshots the hot-path
// microbenchmarks into BENCH_pr3.json).
//
//	go test -run '^$' -bench . -benchmem ./... | bench2json > bench.json
//
// Only result lines ("BenchmarkX-8  1000  1234 ns/op  56 B/op  7 allocs/op")
// are parsed; everything else passes through to stderr untouched so failures
// stay visible.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// parseLine parses one `go test -bench` result line, returning ok=false for
// any line that is not a benchmark result.
func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, true
}

func main() {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		} else {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}
