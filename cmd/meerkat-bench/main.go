// Command meerkat-bench regenerates the tables and figures of the Meerkat
// paper's evaluation (§6).
//
// Each throughput figure has two sources:
//
//   - measured: the real implementation driven by closed-loop clients on
//     this host (in-process transport). Contention effects (Figures 6 and
//     7) reproduce directly; multicore scaling is limited by the host's
//     core count.
//   - simulated: the discrete-event multicore model (internal/sim), which
//     provides the paper's 3x80-thread testbed in virtual time. The
//     scaling figures (1, 4, 5) use it.
//
// Usage:
//
//	meerkat-bench -exp all             # everything
//	meerkat-bench -exp fig4            # Figure 4 (simulated + measured)
//	meerkat-bench -exp fig6a -measure 2s
//	meerkat-bench -exp calibrate       # host-calibrated simulator params
//	meerkat-bench -exp fig4 -calibrated
//	meerkat-bench -faults -json out.json   # kill-one-replica timeline
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"meerkat/internal/bench"
	"meerkat/internal/obs"
	"meerkat/internal/sim"
)

var (
	exp         = flag.String("exp", "all", "experiment: fig1|fig4|fig5|fig6a|fig6b|fig7a|fig7b|table1|table2|latency|retwis-latency|faults|udp|wal|zipf|ro|shard|calibrate|all (udp binds real loopback sockets, wal writes real files, and zipf/ro/shard build a cluster per cell, so those run only when asked for explicitly)")
	faults      = flag.Bool("faults", false, "run the kill-one-replica fault-injection timeline (same as -exp faults)")
	transportF  = flag.String("transport", "", "\"udp\" runs the wire-level transport comparison (same as -exp udp): batched sendmmsg/recvmmsg + pipelined sessions vs the per-datagram baseline vs inproc")
	window      = flag.Int("window", 16, "udp experiment: in-flight transactions per pipelined session")
	flushDelay  = flag.Duration("flush-delay", 20*time.Microsecond, "udp experiment: hold buffered datagrams up to this long to share a sendmmsg")
	udpPort     = flag.Int("udp-port", 27000, "udp experiment: base port of the throwaway port maps")
	measure     = flag.Duration("measure", 500*time.Millisecond, "measured window per real data point")
	keys        = flag.Int("keys", 65536, "pre-loaded keys for real runs")
	clientsF    = flag.Int("clients", 0, "closed-loop clients per measured point (0 = per-experiment default)")
	threadsCSV  = flag.String("threads", "2,4,8,16,32,48,64,80", "simulated thread counts")
	realCSV     = flag.String("real-threads", "1,2,4", "measured thread counts (bounded by host cores)")
	zipfCSV     = flag.String("zipfs", "0,0.2,0.4,0.6,0.7,0.8,0.87,0.9,0.95,0.99", "zipf coefficients for figs 6/7")
	simThreads  = flag.Int("sim-threads", 64, "")
	calibrated  = flag.Bool("calibrated", false, "use host-calibrated simulator parameters instead of paper-anchored defaults")
	skipReal    = flag.Bool("skip-real", false, "skip the measured (real implementation) runs")
	skipSim     = flag.Bool("skip-sim", false, "skip the simulated runs")
	jsonPath    = flag.String("json", "", "write machine-readable results (goodput, latency percentiles, abort rates, fast/slow path counts) to this file")
	metricsAddr = flag.String("metrics-addr", "", "serve live metrics (/metrics, /debug/vars, /debug/pprof) on this address while measured runs execute")
)

func parseInts(csv string) []int {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad int %q\n", f)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func parseFloats(csv string) []float64 {
	var out []float64
	for _, f := range strings.Split(csv, ",") {
		x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad float %q\n", f)
			os.Exit(2)
		}
		out = append(out, x)
	}
	return out
}

func main() {
	flag.Parse()
	out := os.Stdout

	params := sim.DefaultParams()
	if *calibrated {
		fmt.Fprintln(out, "calibrating simulator parameters from this host's code ...")
		params = sim.Calibrate()
	}
	opts := bench.Options{Measure: *measure, Keys: *keys, Clients: *clientsF}
	if *metricsAddr != "" {
		// One registry observes every system the sweeps build; the live
		// exporter shows cumulative counters across the whole invocation.
		opts.Obs = obs.NewRegistry()
		srv, addr, err := obs.Serve(*metricsAddr, opts.Obs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(out, "metrics on http://%s/metrics\n", addr)
	}
	var report bench.Report
	simTh := parseInts(*threadsCSV)
	realTh := parseInts(*realCSV)
	zipfs := parseFloats(*zipfCSV)

	run := func(name string, fn func() error) {
		fmt.Fprintf(out, "\n==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	// The explicit-only experiments (udp/wal/zipf/ro) never run under "all" but
	// may be combined comma-separated, e.g. -exp wal,zipf for one merged
	// JSON report.
	wantOnly := func(name string) bool {
		for _, e := range strings.Split(*exp, ",") {
			if strings.TrimSpace(e) == name {
				return true
			}
		}
		return false
	}

	if want("table1") {
		run("Table 1 (coordination matrix)", func() error {
			bench.Table1(out)
			return nil
		})
	}
	if want("table2") {
		run("Table 2 (Retwis mix, generated)", func() error {
			bench.Table2(out, 500000)
			return nil
		})
	}
	if want("calibrate") && *exp == "calibrate" {
		run("host calibration", func() error {
			p := sim.Calibrate()
			fmt.Fprintf(out, "%+v\n", p)
			return nil
		})
	}
	if want("fig1") {
		if !*skipSim {
			run("Figure 1 (simulated: paper testbed)", func() error {
				sim.Fig1Sweep(out, params, simTh)
				return nil
			})
		}
		if !*skipReal {
			run("Figure 1 (measured on this host)", func() error {
				rs, err := bench.Fig1Sweep(out, realTh, *measure)
				var pts []bench.Point
				for _, r := range rs {
					name := r.Transport
					if r.SharedCounter {
						name += "+counter"
					}
					pts = append(pts, bench.Point{
						System: name, X: float64(r.ServerThreads), Goodput: r.Throughput(),
					})
				}
				report.Add("fig1", pts)
				return err
			})
		}
	}
	if want("fig4") {
		if !*skipSim {
			run("Figure 4 (simulated: YCSB-T uniform, 3 replicas)", func() error {
				sim.ThreadSweep(out, params, "ycsb-t", simTh)
				return nil
			})
		}
		if !*skipReal {
			run("Figure 4 (measured on this host)", func() error {
				pts, err := bench.ThreadSweep(out, "ycsb-t", realTh, opts)
				report.Add("fig4", pts)
				return err
			})
		}
	}
	if want("fig5") {
		if !*skipSim {
			run("Figure 5 (simulated: Retwis uniform, 3 replicas)", func() error {
				sim.ThreadSweep(out, params, "retwis", simTh)
				return nil
			})
		}
		if !*skipReal {
			run("Figure 5 (measured on this host)", func() error {
				pts, err := bench.ThreadSweep(out, "retwis", realTh, opts)
				report.Add("fig5", pts)
				return err
			})
		}
	}
	if want("fig6a") || want("fig7a") {
		if !*skipSim {
			run("Figures 6a/7a (simulated: YCSB-T vs zipf, 64 threads)", func() error {
				sim.ZipfSweep(out, params, "ycsb-t", zipfs, *simThreads)
				return nil
			})
		}
		if !*skipReal {
			run("Figures 6a/7a (measured: YCSB-T vs zipf)", func() error {
				pts, err := bench.ZipfSweep(out, "ycsb-t", zipfs, boundedThreads(), opts)
				report.Add("fig6a_7a", pts)
				return err
			})
		}
	}
	if want("fig6b") || want("fig7b") {
		if !*skipSim {
			run("Figures 6b/7b (simulated: Retwis vs zipf, 64 threads)", func() error {
				sim.ZipfSweep(out, params, "retwis", zipfs, *simThreads)
				return nil
			})
		}
		if !*skipReal {
			run("Figures 6b/7b (measured: Retwis vs zipf)", func() error {
				pts, err := bench.ZipfSweep(out, "retwis", zipfs, boundedThreads(), opts)
				report.Add("fig6b_7b", pts)
				return err
			})
		}
	}
	if wantOnly("udp") || *transportF == "udp" {
		run("UDP wire cost (measured: syscalls/txn, batched vs per-datagram)", func() error {
			pts, err := bench.UDPSweep(out, bench.UDPOptions{
				Options:    opts,
				Window:     *window,
				FlushDelay: *flushDelay,
				BasePort:   *udpPort,
			})
			report.Add("udp", pts)
			return err
		})
	}
	if wantOnly("wal") {
		run("WAL durability cost (measured: goodput per fsync policy)", func() error {
			pts, err := bench.WALSweep(out, bench.WALOptions{Options: opts})
			report.Add("wal", pts)
			return err
		})
	}
	if wantOnly("zipf") {
		run("Commutative ops under skew (measured: RMW write-back vs server-side increment)", func() error {
			pts, err := bench.OpsZipfSweep(out, bench.OpsZipfOptions{Options: opts})
			report.Add("zipf", pts)
			return err
		})
	}
	if wantOnly("ro") {
		run("Read-only fast path (measured: two-round validated vs one-round snapshot)", func() error {
			pts, err := bench.ROSweep(out, bench.ROOptions{Options: opts})
			report.Add("ro", pts)
			return err
		})
	}
	if wantOnly("shard") {
		run("Shard scaling (measured: 1/2/4-shard Retwis + split-under-load timeline)", func() error {
			pts, err := bench.ShardSweep(out, bench.ShardOptions{Options: opts})
			report.Add("shard_sweep", pts)
			if err != nil {
				return err
			}
			fmt.Fprintln(out)
			tl, err := bench.ShardSplitTimeline(out, bench.ShardSplitOptions{Seed: 1})
			report.Add("shard_split", tl)
			return err
		})
	}
	if want("faults") || *faults {
		run("Kill-one-replica timeline (measured, fault injection)", func() error {
			pts, err := bench.FaultTimeline(out, bench.FaultOptions{Seed: 1})
			report.Add("faults", pts)
			return err
		})
	}
	if want("latency") {
		run("Unloaded commit latency (measured, §6.2 latency note)", func() error {
			return bench.LatencySweep(out, 2000, *keys)
		})
	}
	if want("retwis-latency") {
		run("Retwis per-kind latency (measured, batched execution phase)", func() error {
			return bench.RetwisLatency(out, 8000, *keys)
		})
	}
	if *jsonPath != "" {
		if report.Empty() {
			fmt.Fprintf(out, "note: -json given but no measured points were produced (all runs skipped?)\n")
		}
		if err := report.WriteJSON(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "wrote %s\n", *jsonPath)
	}
	fmt.Fprintln(out)
}

// boundedThreads returns the server-thread count for the zipf sweeps: the
// paper uses 64, but on a small host extra threads only add scheduler noise.
func boundedThreads() int {
	if *simThreads > 8 {
		return 4
	}
	return *simThreads
}
