// Command meerkat-server runs one Meerkat replica over real UDP, so a
// 3-replica cluster can be deployed as separate processes (or separate
// machines sharing the same -host network).
//
// A minimal local cluster:
//
//	meerkat-server -index 0 &
//	meerkat-server -index 1 &
//	meerkat-server -index 2 &
//	meerkat-client -op put -key hello -value world
//	meerkat-client -op get -key hello
//
// All processes must agree on -host, -port, -replicas, -cores, and
// -partitions (they define the address map).
//
// With -data-dir the replica persists commits to per-core write-ahead logs
// and restarts from disk (see the durability section of DESIGN.md); -sync
// selects the fsync policy (none, batch, always).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"meerkat/internal/obs"
	"meerkat/internal/replica"
	"meerkat/internal/shardmap"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
	"meerkat/internal/vstore"
	"meerkat/internal/wal"
	"meerkat/internal/workload"
)

func main() {
	var (
		host        = flag.String("host", "127.0.0.1", "bind address")
		port        = flag.Int("port", 29000, "base UDP port for the address map")
		partition   = flag.Int("partition", 0, "partition this replica serves")
		index       = flag.Int("index", 0, "replica index within the partition group")
		replicas    = flag.Int("replicas", 3, "replicas per partition group")
		partitions  = flag.Int("partitions", 1, "number of partitions (deprecated static routing; prefer -shards)")
		shards      = flag.Int("shards", 0, "serve one shard of a hash-range shard map over this many groups (sets the partition count; clients must pass the same -shards); 0 keeps static -partitions routing")
		cores       = flag.Int("cores", 4, "server threads")
		keys        = flag.Int("keys", 0, "pre-load this many benchmark keys")
		shared      = flag.Bool("shared-record", false, "use the TAPIR-like shared transaction record")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus), /debug/vars (expvar JSON), and /debug/pprof on this address")
		dataDir     = flag.String("data-dir", "", "persist commits to per-core write-ahead logs in this directory (empty: in-memory only)")
		syncFlag    = flag.String("sync", "batch", "WAL fsync policy: none, batch, or always")
	)
	flag.Parse()

	syncPolicy, err := wal.ParseSyncPolicy(*syncFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// -shards puts this replica group behind the deterministic version-1
	// shard map: it redirects keys it does not own, so a client with a
	// mismatched shard count fails loudly instead of reading the wrong group.
	var own *shardmap.Ownership
	if *shards > 0 {
		*partitions = *shards
		own = shardmap.NewOwnership(shardmap.New(*shards), *partition)
	}

	t := topo.Topology{Partitions: *partitions, Replicas: *replicas, Cores: *cores}
	if !t.Validate() {
		fmt.Fprintln(os.Stderr, "invalid topology (replicas must be odd, all counts >= 1)")
		os.Exit(2)
	}
	coresPerNode := *cores
	if coresPerNode < 2+*partitions {
		coresPerNode = 2 + *partitions // client endpoints need port slots
	}
	net := transport.NewUDP(*host, *port, coresPerNode)
	defer net.Close()

	reg := obs.NewRegistry()
	net.RegisterObs(reg)

	// With -data-dir the store is rebuilt from the local snapshot + logs; a
	// fresh directory starts empty, exactly like the in-memory path.
	var store *vstore.Store
	var w *wal.Store
	recovered := false
	if *dataDir != "" {
		ws, recov, err := wal.Open(*dataDir, *cores, wal.Options{Sync: syncPolicy})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w, store = ws, recov.Store
		recovered = recov.SnapshotKeys > 0 || recov.Records > 0
		fmt.Printf("wal: recovered snapshot=%d (%d keys) + %d log records, watermark %v, torn=%v, sync=%v\n",
			recov.SnapshotSeq, recov.SnapshotKeys, recov.Records, recov.Watermark, recov.Torn, syncPolicy)
	} else {
		store = vstore.New(vstore.Config{})
	}
	reg.RegisterGauge("vstore_keys", func() uint64 { k, _ := store.Counts(); return k })
	reg.RegisterGauge("vstore_versions", func() uint64 { _, v := store.Counts(); return v })
	if w != nil {
		reg.RegisterGauge("wal_appends", func() uint64 { return w.Stats().Appends })
		reg.RegisterGauge("wal_syncs", func() uint64 { return w.Stats().Syncs })
		reg.RegisterGauge("wal_bytes_written", func() uint64 { return w.Stats().BytesWritten })
		// Non-zero means disk IO has failed at least once; alert on it —
		// records are retained and retried, but durability is degraded.
		reg.RegisterGauge("wal_failures", func() uint64 { return w.Stats().Failures })
	}

	rep, err := replica.New(replica.Config{
		Topo:         t,
		Partition:    *partition,
		Index:        *index,
		Net:          net,
		Store:        store,
		Ownership:    own,
		SharedRecord: *shared,
		Obs:          reg,
		WAL:          w,
	})
	if err != nil {
		if w != nil {
			w.Close()
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *keys > 0 && !recovered {
		// Preload through the replica so the keys hit the WAL too; a
		// restarted replica already has them from replay.
		val := workload.Value(64)
		ts := timestamp.Timestamp{Time: 1, ClientID: 0}
		for i := 0; i < *keys; i++ {
			rep.Load(workload.KeyName(i), val, ts)
		}
		fmt.Printf("loaded %d keys\n", *keys)
	}
	if err := rep.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Stop flushes and fsyncs every core's log before closing it, so a
	// SIGTERM'd replica restarts with zero committed-transaction loss.
	defer rep.Stop()

	if *metricsAddr != "" {
		srv, addr, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", addr)
	}

	fmt.Printf("meerkat replica %d/%d of partition %d serving on %s:%d+ (%d cores)\n",
		*index, *replicas, *partition, *host, *port, *cores)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}
