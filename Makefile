GO ?= go

.PHONY: build test race vet bench bench-json check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

check: build vet test race

# Hot-path microbenchmarks with allocation counts: codec encode/decode with
# and without pooling, inproc request/reply round trips, and the lock-free
# vstore read path.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEncodeDecode|BenchmarkInprocRoundTrip|BenchmarkVstoreRead' -benchmem \
		./internal/message ./internal/transport ./internal/vstore

# Machine-readable snapshot of the end-to-end hot-path benchmarks (commit and
# batched-read latency plus allocation counts), archived per PR for
# before/after comparison in EXPERIMENTS.md.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkCommitSinglePartition|BenchmarkTxnTimeline10|BenchmarkEncodeDecode' -benchmem . ./internal/message \
		| $(GO) run ./cmd/bench2json > BENCH_pr3.json
	@cat BENCH_pr3.json
