GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

check: build vet test race

# Hot-path microbenchmarks with allocation counts: codec encode/decode with
# and without pooling, inproc request/reply round trips, and the lock-free
# vstore read path.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEncodeDecode|BenchmarkInprocRoundTrip|BenchmarkVstoreRead' -benchmem \
		./internal/message ./internal/transport ./internal/vstore
