GO ?= go

.PHONY: build test race vet bench bench-json bench-udp bench-wal bench-zipf bench-ro bench-shard chaos check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

# Seeded fault-injection run under the race detector: ambient loss, a
# partition window, one replica crash+restart; the checker must accept the
# history and the crash window must force slow-path commits. Set
# CHAOS_ARTIFACT_DIR to keep the fault-schedule JSON on failure.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' -v ./internal/chaos/

check: build vet test race

# Hot-path microbenchmarks with allocation counts: codec encode/decode with
# and without pooling, inproc request/reply round trips, and the lock-free
# vstore read path.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEncodeDecode|BenchmarkInprocRoundTrip|BenchmarkVstoreRead' -benchmem \
		./internal/message ./internal/transport ./internal/vstore

# Machine-readable snapshot of the end-to-end hot-path benchmarks (commit and
# batched-read latency plus allocation counts), archived per PR for
# before/after comparison in EXPERIMENTS.md.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkCommitSinglePartition|BenchmarkTxnTimeline10|BenchmarkEncodeDecode' -benchmem . ./internal/message \
		| $(GO) run ./cmd/bench2json > BENCH_pr3.json
	@cat BENCH_pr3.json

# Wire-level transport comparison over real loopback UDP: batched
# sendmmsg/recvmmsg + pipelined sessions vs the per-datagram baseline vs
# inproc, reporting goodput and socket syscalls per committed transaction.
# Override MEASURE for quicker smoke runs (CI uses 300ms).
MEASURE ?= 2s
bench-udp:
	$(GO) run ./cmd/meerkat-bench -exp udp -measure $(MEASURE) -json BENCH_pr6.json

# Durability cost of the per-core write-ahead log: Retwis goodput fully in
# memory vs the WAL under each fsync policy (none/batch/always), with fsyncs
# per committed transaction showing the group-commit amortization.
bench-wal:
	$(GO) run ./cmd/meerkat-bench -exp wal -measure $(MEASURE) -json BENCH_pr7.json

# Commutative ops under skew plus the re-measured WAL sweep (the shared
# group-commit scheduler fixed the wal-batch fsync storm): hot-counter
# RMW-via-Put vs RMW-via-Increment across Zipf theta, reporting goodput,
# abort rate, and latency percentiles per cell.
bench-zipf:
	$(GO) run ./cmd/meerkat-bench -exp wal,zipf -measure $(MEASURE) -json BENCH_pr8.json

# Read-only fast path on read-heavy Retwis: the validated two-round commit
# vs the one-round snapshot path at 80/95/100% pure-read transactions,
# reporting goodput, abort rate, latency percentiles, and the share of
# commits that actually rode the fast path.
bench-ro:
	$(GO) run ./cmd/meerkat-bench -exp ro -measure $(MEASURE) -json BENCH_pr9.json

# Horizontal scaling of the sharded cluster layer: Retwis goodput at 1, 2,
# and 4 shards under the inproc endpoint capacity model (clients homed per
# shard, keys routed by the versioned hash-range shard map), plus a
# split-under-load timeline — the dip while shard 0 seals, fences, and
# migrates half the keyspace, then the recovery onto doubled capacity.
bench-shard:
	$(GO) run ./cmd/meerkat-bench -exp shard -measure $(MEASURE) -json BENCH_pr10.json
