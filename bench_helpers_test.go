package meerkat_test

import (
	"time"

	"meerkat"
)

// newBenchCluster builds a small cluster for the ablation benchmarks.
func newBenchCluster(disableFastPath bool) (*meerkat.Cluster, error) {
	return meerkat.NewCluster(meerkat.Config{
		Cores:           2,
		DisableFastPath: disableFastPath,
	})
}

// newSkewedCluster builds a cluster whose clients get skewed clocks.
func newSkewedCluster(skew time.Duration) (*meerkat.Cluster, error) {
	return meerkat.NewCluster(meerkat.Config{
		Cores:     2,
		ClockSkew: skew,
	})
}
