package meerkat_test

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"meerkat"
	"meerkat/internal/obs"
)

// obsCluster builds a small cluster for observability tests.
func obsCluster(t *testing.T, cfg meerkat.Config) *meerkat.Cluster {
	t.Helper()
	cluster, err := meerkat.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return cluster
}

// txnCounterTotal sums every per-transaction outcome counter in a delta.
func txnCounterTotal(d obs.Snapshot) uint64 {
	return d.Counter(obs.TxnCommitFast) + d.Counter(obs.TxnCommitSlow) +
		d.Counter(obs.TxnAbortValidation) + d.Counter(obs.TxnAbortAcceptAbort) +
		d.Counter(obs.TxnAbortTimeout)
}

// TestAbortTaxonomyValidationConflict forces a fast-path validation conflict:
// a transaction reads a key, a second transaction overwrites it, and the
// first transaction's commit must then abort with a supermajority of
// VALIDATED-ABORT votes — counted exactly once as a validation abort.
func TestAbortTaxonomyValidationConflict(t *testing.T) {
	cluster := obsCluster(t, meerkat.Config{})
	cluster.Load("k", []byte("v0"))
	victim, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	winner, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer winner.Close()

	before := cluster.Obs().Snapshot()

	txn := victim.Begin()
	if _, err := txn.Read("k"); err != nil {
		t.Fatal(err)
	}
	if err := winner.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	txn.Write("k", []byte("v2"))
	committed, err := txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("conflicting transaction committed")
	}

	d := cluster.Obs().Snapshot().Sub(before)
	if got := d.Counter(obs.TxnAbortValidation); got != 1 {
		t.Errorf("TxnAbortValidation = %d, want 1", got)
	}
	if got := d.Counter(obs.TxnAbortAcceptAbort); got != 0 {
		t.Errorf("TxnAbortAcceptAbort = %d, want 0", got)
	}
	if got := d.Counter(obs.TxnAbortTimeout); got != 0 {
		t.Errorf("TxnAbortTimeout = %d, want 0", got)
	}
	if got := d.Counter(obs.TxnCommitFast); got != 1 { // the winner's Put
		t.Errorf("TxnCommitFast = %d, want 1", got)
	}
	// Two Commit calls happened; each must be classified exactly once.
	if got := txnCounterTotal(d); got != 2 {
		t.Errorf("txn outcome counters sum to %d, want 2", got)
	}
	// The inproc transport is reliable, so replica-side validation votes are
	// exact: 3 OK for the winner, 3 ABORT for the victim.
	if got := d.Counter(obs.ValidateOK); got != 3 {
		t.Errorf("ValidateOK = %d, want 3", got)
	}
	if got := d.Counter(obs.ValidateAbort); got != 3 {
		t.Errorf("ValidateAbort = %d, want 3", got)
	}
}

// TestAbortTaxonomyAcceptAbort forces the same conflict through the slow
// path (DisableFastPath): the abort decision now comes from an ACCEPT-ABORT
// round and must be counted as an accept-abort, not a validation abort.
func TestAbortTaxonomyAcceptAbort(t *testing.T) {
	cluster := obsCluster(t, meerkat.Config{DisableFastPath: true})
	cluster.Load("k", []byte("v0"))
	victim, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	winner, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer winner.Close()

	before := cluster.Obs().Snapshot()

	txn := victim.Begin()
	if _, err := txn.Read("k"); err != nil {
		t.Fatal(err)
	}
	if err := winner.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	txn.Write("k", []byte("v2"))
	committed, err := txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("conflicting transaction committed")
	}

	d := cluster.Obs().Snapshot().Sub(before)
	if got := d.Counter(obs.TxnAbortAcceptAbort); got != 1 {
		t.Errorf("TxnAbortAcceptAbort = %d, want 1", got)
	}
	if got := d.Counter(obs.TxnAbortValidation); got != 0 {
		t.Errorf("TxnAbortValidation = %d, want 0", got)
	}
	if got := d.Counter(obs.TxnCommitSlow); got != 1 { // the winner's Put
		t.Errorf("TxnCommitSlow = %d, want 1", got)
	}
	if got := d.Counter(obs.TxnCommitFast); got != 0 {
		t.Errorf("TxnCommitFast = %d, want 0 with the fast path disabled", got)
	}
	if got := txnCounterTotal(d); got != 2 {
		t.Errorf("txn outcome counters sum to %d, want 2", got)
	}
	// Both transactions went through an accept round on every replica. The
	// coordinator proceeds after a majority of acks, so the last replica's
	// ack lands asynchronously — poll briefly for the full count.
	deadline := time.Now().Add(time.Second)
	for {
		got := cluster.Obs().Snapshot().Sub(before).Counter(obs.AcceptAcked)
		if got == 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("AcceptAcked = %d, want 6", got)
			break
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAbortTaxonomyTimeout crashes a majority so the commit outcome cannot
// be determined; the failure must be counted as a timeout, exactly once,
// and not as any other abort kind.
func TestAbortTaxonomyTimeout(t *testing.T) {
	cluster := obsCluster(t, meerkat.Config{
		CommitTimeout: 20 * time.Millisecond,
		Retries:       1,
	})
	cluster.Load("k", []byte("v0"))
	cl, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cluster.CrashReplica(0, 1)
	cluster.CrashReplica(0, 2)

	before := cluster.Obs().Snapshot()

	txn := cl.Begin()
	txn.Write("k", []byte("v1"))
	if _, err := txn.Commit(); err == nil {
		t.Fatal("commit with a crashed majority returned no error")
	}

	d := cluster.Obs().Snapshot().Sub(before)
	if got := d.Counter(obs.TxnAbortTimeout); got != 1 {
		t.Errorf("TxnAbortTimeout = %d, want 1", got)
	}
	if got := d.Counter(obs.TxnAbortValidation) + d.Counter(obs.TxnAbortAcceptAbort); got != 0 {
		t.Errorf("non-timeout abort counters = %d, want 0", got)
	}
	if got := txnCounterTotal(d); got != 1 {
		t.Errorf("txn outcome counters sum to %d, want 1", got)
	}
}

// scrapeMetric extracts one sample value from Prometheus exposition text.
func scrapeMetric(t *testing.T, body, name string) uint64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 10, 64)
		if err != nil {
			t.Fatalf("parsing %s: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in scrape:\n%s", name, body)
	return 0
}

// TestMetricsHTTPMatchesClient runs live traffic against a cluster while its
// registry is served over HTTP, then checks that the scraped counters agree
// with what the clients themselves observed.
func TestMetricsHTTPMatchesClient(t *testing.T) {
	cluster := obsCluster(t, meerkat.Config{})
	for i := 0; i < 16; i++ {
		cluster.Load(fmt.Sprintf("key%d", i), []byte("v"))
	}

	srv, addr, err := obs.Serve("127.0.0.1:0", cluster.Obs())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 16; i++ {
		if err := cl.Put(fmt.Sprintf("key%d", i), []byte("w")); err != nil {
			t.Fatal(err)
		}
	}
	// One deliberate conflict so the abort counters carry signal too.
	conflicted := cl.Begin()
	if _, err := conflicted.Read("key0"); err != nil {
		t.Fatal(err)
	}
	other, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.Put("key0", []byte("x")); err != nil {
		t.Fatal(err)
	}
	conflicted.Write("key0", []byte("y"))
	if committed, err := conflicted.Commit(); err != nil || committed {
		t.Fatalf("conflict txn: committed=%v err=%v", committed, err)
	}

	var wantCommitted, wantAborted uint64
	for _, c := range []*meerkat.Client{cl, other} {
		committed, aborted := c.Stats()
		wantCommitted += committed
		wantAborted += aborted
	}

	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	gotCommitted := scrapeMetric(t, body, "meerkat_txn_commit_fast_total") +
		scrapeMetric(t, body, "meerkat_txn_commit_slow_total")
	gotAborted := scrapeMetric(t, body, "meerkat_txn_abort_validation_total") +
		scrapeMetric(t, body, "meerkat_txn_abort_accept_abort_total")
	if gotCommitted != wantCommitted {
		t.Errorf("scraped commits = %d, client stats say %d", gotCommitted, wantCommitted)
	}
	if gotAborted != wantAborted {
		t.Errorf("scraped aborts = %d, client stats say %d", gotAborted, wantAborted)
	}
	if keys := scrapeMetric(t, body, "meerkat_vstore_keys"); keys < 3*16 {
		t.Errorf("meerkat_vstore_keys = %d, want >= %d (16 keys x 3 replicas)", keys, 3*16)
	}
	if count := scrapeMetric(t, body, "meerkat_commit_latency_seconds_count"); count != wantCommitted {
		t.Errorf("commit latency count = %d, want %d", count, wantCommitted)
	}
}
